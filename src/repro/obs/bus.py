"""The structured event bus: typed publish/subscribe plus a ring buffer.

Design constraints, in order:

1. **Deterministic.**  Dispatch is synchronous and in publication order;
   subscribers for a type run in subscription order.  Replacing a direct
   sink call with a publish therefore reproduces the exact same sink-call
   sequence, which is what lets the runner route its metrics collector
   through the bus without moving a single fingerprint bit.
2. **Cheap.**  A publish is one deque append plus a cached handler-list
   walk.  Publishers that hold no bus (``bus is None``) skip event
   construction entirely, so the disabled path costs one identity check.
3. **Bounded.**  The ring buffer keeps the last ``capacity`` events for
   retrospective queries (``bus.events()``); subscribers always see every
   event regardless of ring evictions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.obs.events import Event

__all__ = ["EventBus"]

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous, ring-buffered, type-keyed event bus."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        #: handlers keyed by concrete event class; ``None`` key = wildcard.
        self._subscribers: Dict[Optional[Type[Event]], List[Handler]] = {}
        #: per-class dispatch list (type handlers + wildcards), rebuilt on
        #: subscription changes so a publish is a single dict hit.
        self._dispatch_cache: Dict[Type[Event], Tuple[Handler, ...]] = {}
        #: total publications per event kind (never evicted).
        self._counts: Dict[str, int] = {}
        self.published = 0

    # ------------------------------------------------------------------ #
    # subscription
    # ------------------------------------------------------------------ #
    def subscribe(
        self, event_type: Optional[Type[Event]], handler: Handler
    ) -> Handler:
        """Register ``handler`` for one event class (``None`` = all)."""
        self._subscribers.setdefault(event_type, []).append(handler)
        self._dispatch_cache.clear()
        return handler

    def subscribe_many(
        self, handlers: Dict[Optional[Type[Event]], Handler]
    ) -> None:
        for event_type, handler in handlers.items():
            self.subscribe(event_type, handler)

    def unsubscribe(
        self, event_type: Optional[Type[Event]], handler: Handler
    ) -> None:
        listeners = self._subscribers.get(event_type, [])
        if handler in listeners:
            listeners.remove(handler)
            self._dispatch_cache.clear()

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #
    def publish(self, event: Event) -> None:
        self._ring.append(event)
        self.published += 1
        kind = event.kind
        self._counts[kind] = self._counts.get(kind, 0) + 1
        cls = type(event)
        handlers = self._dispatch_cache.get(cls)
        if handlers is None:
            handlers = tuple(
                self._subscribers.get(cls, ())
            ) + tuple(self._subscribers.get(None, ()))
            self._dispatch_cache[cls] = handlers
        for handler in handlers:
            handler(event)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def events(self, *event_types: Type[Event]) -> List[Event]:
        """Ring-buffer contents, optionally filtered by class."""
        if not event_types:
            return list(self._ring)
        return [e for e in self._ring if isinstance(e, event_types)]

    def count(self, kind_or_type) -> int:
        """Total publications of one kind (string or event class)."""
        kind = (
            kind_or_type
            if isinstance(kind_or_type, str)
            else kind_or_type.kind
        )
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def tail(self, n: int = 20) -> List[Event]:
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        """Drop buffered events and counters (subscriptions survive)."""
        self._ring.clear()
        self._counts.clear()
        self.published = 0
