"""Unified observability subsystem: event bus, tracing, and metric export.

Three pillars (wired together by :class:`repro.obs.hub.ObservabilityHub`):

* :mod:`repro.obs.bus` — a structured, ring-buffered **event bus**.  The
  runner, both Tango schedulers, the HRM modules, and the failure injector
  publish typed events (:mod:`repro.obs.events`); the legacy sinks — the
  kube :class:`~repro.kube.events.EventRecorder`, the
  :class:`~repro.metrics.collectors.PeriodCollector`, and the stage
  profiler — consume them as subscribers (:mod:`repro.obs.bridges`).
* :mod:`repro.obs.tracing` — **request-lifecycle tracing**: every
  :class:`~repro.sim.request.ServiceRequest` gets a span chain
  (arrival → schedule → ship → queue → execute → complete/abandon/evict)
  queryable in memory and dumpable as JSONL via ``python -m repro trace``.
* :mod:`repro.obs.metrics` — a **metric registry** (counters, gauges,
  histograms) with JSONL and Prometheus-text exporters.

The whole layer is opt-in (``RunnerConfig(observe=True)``) and a strict
no-op when disabled: publishers hold a ``bus`` attribute that defaults to
``None`` and skip event construction entirely, so the PR 1 determinism
fingerprints and the bench gate are unaffected.
"""

from repro.obs.bus import EventBus
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracing import RequestTrace, RequestTracer, Span

__all__ = [
    "EventBus",
    "ObservabilityHub",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RequestTracer",
    "RequestTrace",
    "Span",
]


def __getattr__(name):
    # The hub (and its bridges) import the legacy sinks, which sit above
    # several packages that themselves publish to the bus.  Loading it
    # lazily keeps ``repro.obs.events``/``bus`` importable from anywhere
    # in the dependency graph without a cycle.
    if name == "ObservabilityHub":
        from repro.obs.hub import ObservabilityHub

        return ObservabilityHub
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
