"""Bridges re-homing the legacy telemetry sinks as bus subscribers.

Before the bus existed the runner called three disconnected sinks
directly: the kube :class:`EventRecorder` (audit stream), the
:class:`PeriodCollector` (experiment metrics), and the stage profiler.
Each bridge subscribes one of them to the typed event stream instead, so
every sink sees the exact same call sequence it used to receive — the
collector bridge in particular replays ``on_arrival`` / ``on_completion``
/ ``on_abandon`` / ``on_eviction`` in publication order, which keeps run
fingerprints bit-identical with observability on or off.
"""

from __future__ import annotations

from repro.kube.events import EventRecorder, Reason
from repro.metrics.collectors import PeriodCollector
from repro.obs.bus import EventBus
from repro.obs.events import (
    BESqueezed,
    DispatchRound,
    DVPAResized,
    NodeCrashed,
    NodeRecovered,
    PartitionHealed,
    PartitionStarted,
    PreemptiveEviction,
    ReassuranceTransition,
    RequestAbandoned,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
    RequestEvicted,
    RequestScheduled,
)
from repro.obs.metrics import MetricRegistry

__all__ = ["CollectorBridge", "KubeEventBridge", "MetricsSubscriber"]


class CollectorBridge:
    """Feeds a :class:`PeriodCollector` from lifecycle events.

    The collector remains the source of the run's :class:`RunMetrics`; the
    bridge only changes *how* it is driven (publish → handler instead of a
    direct method call at the same program point).
    """

    def __init__(self, collector: PeriodCollector, bus: EventBus) -> None:
        self.collector = collector
        bus.subscribe_many(
            {
                RequestArrived: self._on_arrived,
                RequestCompleted: self._on_completed,
                RequestAbandoned: self._on_abandoned,
                RequestEvicted: self._on_evicted,
            }
        )

    def _on_arrived(self, ev: RequestArrived) -> None:
        self.collector.on_arrival(ev.request)

    def _on_completed(self, ev: RequestCompleted) -> None:
        self.collector.on_completion(ev.request)

    def _on_abandoned(self, ev: RequestAbandoned) -> None:
        self.collector.on_abandon(ev.request)

    def _on_evicted(self, ev: RequestEvicted) -> None:
        # Crash-displaced BE never hit the eviction counters in the direct
        # path (only HRM preemptions do), so the bridge preserves that.
        if ev.cause == "preemption":
            self.collector.on_eviction(ev.request)


class KubeEventBridge:
    """Renders bus events into the kubectl-style audit stream."""

    def __init__(self, recorder: EventRecorder, bus: EventBus) -> None:
        self.recorder = recorder
        bus.subscribe_many(
            {
                RequestScheduled: self._on_scheduled,
                RequestEvicted: self._on_evicted,
                RequestAbandoned: self._on_abandoned,
                NodeCrashed: self._on_crashed,
                NodeRecovered: self._on_recovered,
                PartitionStarted: self._on_partition,
                PartitionHealed: self._on_heal,
                DVPAResized: self._on_dvpa,
                BESqueezed: self._on_squeeze,
                ReassuranceTransition: self._on_reassurance,
            }
        )

    def _on_scheduled(self, ev: RequestScheduled) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.SCHEDULED,
            f"req/{ev.request_id}",
            f"{ev.service} -> {ev.node}",
        )

    def _on_evicted(self, ev: RequestEvicted) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.EVICTED,
            f"req/{ev.request_id}",
            f"{ev.service} preempted on {ev.node}",
            type="Warning",
        )

    def _on_abandoned(self, ev: RequestAbandoned) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.FAILED_SCHEDULING,
            f"req/{ev.request_id}",
            f"{ev.service} abandoned past deadline",
            type="Warning",
        )

    def _on_crashed(self, ev: NodeCrashed) -> None:
        self.recorder.emit(
            ev.time_ms, Reason.NODE_DOWN, f"node/{ev.node}", "crash",
            type="Warning",
        )

    def _on_recovered(self, ev: NodeRecovered) -> None:
        self.recorder.emit(
            ev.time_ms, Reason.NODE_RECOVERED, f"node/{ev.node}", "recover",
        )

    def _on_partition(self, ev: PartitionStarted) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.PARTITIONED,
            f"cluster/{ev.cluster_id}",
            f"WAN partition for {ev.duration_ms:.0f} ms",
            type="Warning",
        )

    def _on_heal(self, ev: PartitionHealed) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.PARTITION_HEALED,
            f"cluster/{ev.cluster_id}",
            "WAN partition healed",
        )

    def _on_dvpa(self, ev: DVPAResized) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.DVPA_RESIZED,
            f"node/{ev.node}",
            f"{ev.service} {ev.direction} ({ev.latency_ms:.1f} ms)",
        )

    def _on_squeeze(self, ev: BESqueezed) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.BE_SQUEEZED,
            f"node/{ev.node}",
            f"reclaimed {ev.freed_cpu:.2f} CPU from running BE",
        )

    def _on_reassurance(self, ev: ReassuranceTransition) -> None:
        self.recorder.emit(
            ev.time_ms,
            Reason.QOS_ADJUSTED,
            f"node/{ev.node}",
            f"{ev.service}: {ev.previous} -> {ev.level}",
        )


class MetricsSubscriber:
    """Folds bus events into registry counters/histograms.

    Per-tick gauges (utilization, queue depths, slack) are pushed by the
    hub's :meth:`~repro.obs.hub.ObservabilityHub.sample_period` instead —
    they are point-in-time reads of system state, not event folds.
    """

    def __init__(self, registry: MetricRegistry, bus: EventBus) -> None:
        r = registry
        self.arrived = r.counter(
            "requests_arrived_total", "requests injected, by kind"
        )
        self.completed = r.counter(
            "requests_completed_total", "requests completed, by kind"
        )
        self.satisfied = r.counter(
            "requests_satisfied_total", "completed LC requests meeting QoS"
        )
        self.abandoned = r.counter(
            "requests_abandoned_total", "LC requests abandoned, by where"
        )
        self.evicted = r.counter(
            "requests_evicted_total", "BE requests preempted off nodes"
        )
        self.dropped = r.counter(
            "requests_dropped_total", "BE requests discarded past reschedule cap"
        )
        self.latency = r.histogram(
            "lc_latency_ms", "end-to-end LC latency (completed requests)"
        )
        self.dispatch_rounds = r.counter(
            "dispatch_rounds_total", "scheduler invocations, by scheduler"
        )
        self.dispatch_assigned = r.counter(
            "dispatch_assigned_total", "requests placed, by scheduler"
        )
        self.flow_cost = r.counter(
            "dispatch_flow_cost_ms_total", "summed MCMF objective (delay ms)"
        )
        self.crashes = r.counter("node_crashes_total", "worker crash events")
        self.recoveries = r.counter(
            "node_recoveries_total", "worker recovery events"
        )
        self.partitions = r.counter(
            "wan_partitions_total", "WAN partition events"
        )
        self.heals = r.counter("wan_heals_total", "WAN partition heals")
        self.dvpa = r.counter(
            "dvpa_resizes_total", "D-VPA in-place resizes, by direction"
        )
        self.squeezes = r.counter(
            "be_squeezes_total", "compressible-CPU squeezes of running BE"
        )
        self.preemptive_evictions = r.counter(
            "preemptive_evictions_total", "incompressible-reclaim evictions"
        )
        self.reassurance = r.counter(
            "reassurance_transitions_total",
            "Algorithm 1 level transitions, by target level",
        )
        bus.subscribe_many(
            {
                RequestArrived: self._on_arrived,
                RequestCompleted: self._on_completed,
                RequestAbandoned: self._on_abandoned,
                RequestEvicted: self._on_evicted,
                RequestDropped: self._on_dropped,
                DispatchRound: self._on_dispatch,
                NodeCrashed: self._on_crashed,
                NodeRecovered: self._on_recovered,
                PartitionStarted: self._on_partition,
                PartitionHealed: self._on_heal,
                DVPAResized: self._on_dvpa,
                BESqueezed: self._on_squeeze,
                PreemptiveEviction: self._on_preemptive,
                ReassuranceTransition: self._on_reassurance,
            }
        )

    def _on_arrived(self, ev: RequestArrived) -> None:
        self.arrived.inc(kind="lc" if ev.lc else "be")

    def _on_completed(self, ev: RequestCompleted) -> None:
        self.completed.inc(kind="lc" if ev.lc else "be")
        if ev.lc:
            self.latency.observe(ev.latency_ms, service=ev.service)
            if ev.qos_met:
                self.satisfied.inc(service=ev.service)

    def _on_abandoned(self, ev: RequestAbandoned) -> None:
        self.abandoned.inc(where=ev.where)

    def _on_evicted(self, ev: RequestEvicted) -> None:
        self.evicted.inc(cause=ev.cause)

    def _on_dropped(self, ev: RequestDropped) -> None:
        self.dropped.inc()

    def _on_dispatch(self, ev: DispatchRound) -> None:
        self.dispatch_rounds.inc(scheduler=ev.scheduler)
        if ev.assigned:
            self.dispatch_assigned.inc(ev.assigned, scheduler=ev.scheduler)
        if ev.flow_cost_ms:
            self.flow_cost.inc(ev.flow_cost_ms, scheduler=ev.scheduler)

    def _on_crashed(self, ev: NodeCrashed) -> None:
        self.crashes.inc()

    def _on_recovered(self, ev: NodeRecovered) -> None:
        self.recoveries.inc()

    def _on_partition(self, ev: PartitionStarted) -> None:
        self.partitions.inc()

    def _on_heal(self, ev: PartitionHealed) -> None:
        self.heals.inc()

    def _on_dvpa(self, ev: DVPAResized) -> None:
        self.dvpa.inc(direction=ev.direction)

    def _on_squeeze(self, ev: BESqueezed) -> None:
        self.squeezes.inc()

    def _on_preemptive(self, ev: PreemptiveEviction) -> None:
        self.preemptive_evictions.inc(ev.victims)

    def _on_reassurance(self, ev: ReassuranceTransition) -> None:
        self.reassurance.inc(to=ev.level)
