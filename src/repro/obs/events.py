"""Typed event taxonomy published on the observability bus.

Every event is a small dataclass with a class-level ``kind`` string in
``domain.verb`` form (``request.scheduled``, ``failure.partition``, …).
Request-lifecycle events additionally carry a ``request`` reference for
in-process subscribers (the metrics collector bridge and the tracer read
timestamps straight off the live object); :meth:`Event.to_dict` excludes
it so every event serialises to plain JSON scalars.

The taxonomy (one class per row):

========================  ====================================================
kind                      published by / meaning
========================  ====================================================
request.arrived           runner — trace record became a ``ServiceRequest``
request.scheduled         runner — dispatch decision shipped (node, MCMF cost)
request.delivered         runner — request reached its worker's queue
request.completed         runner — processing finished (latency, QoS verdict)
request.abandoned         runner — LC outlived patience / lost to a crash
request.evicted           runner — BE preempted off a node
request.requeued          runner — displaced request re-entered its master
request.dropped           runner — BE discarded past ``max_be_reschedules``
scheduler.dispatch        DSS-LC / DCG-BE — one dispatch round (flow cost)
failure.node_crashed      injector — worker went down
failure.node_recovered    injector — worker came back
failure.partition         injector — WAN partition isolated a cluster
failure.heal              injector — partition healed
hrm.dvpa_resized          HRM — D-VPA in-place resize (grow or shrink)
hrm.be_squeezed           HRM — compressible CPU reclaimed from running BE
hrm.preemptive_eviction   HRM — incompressible reclaim evicted BE victims
hrm.reassurance           re-assurance — (node, service) level transition
runner.period             runner — one 800 ms metrics period sampled
runner.stage_profile      runner — end-of-run stage wall-clock totals
invariant.violation       invariant stage — a runtime conservation law failed
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional

__all__ = [
    "Event",
    "RequestArrived",
    "RequestScheduled",
    "RequestDelivered",
    "RequestCompleted",
    "RequestAbandoned",
    "RequestEvicted",
    "RequestRequeued",
    "RequestDropped",
    "DispatchRound",
    "NodeCrashed",
    "NodeRecovered",
    "PartitionStarted",
    "PartitionHealed",
    "DVPAResized",
    "BESqueezed",
    "PreemptiveEviction",
    "ReassuranceTransition",
    "PeriodSampled",
    "StageProfile",
    "InvariantViolated",
]


@dataclass
class Event:
    """Base event: simulation timestamp plus a class-level ``kind``."""

    kind: ClassVar[str] = "event"

    time_ms: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view; live object references are excluded."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "request":
                continue
            out[f.name] = getattr(self, f.name)
        return out


# ---------------------------------------------------------------------- #
# request lifecycle
# ---------------------------------------------------------------------- #
@dataclass
class RequestArrived(Event):
    kind: ClassVar[str] = "request.arrived"
    request_id: int = 0
    service: str = ""
    lc: bool = True
    origin_cluster: int = 0
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestScheduled(Event):
    """A dispatch decision left the master: chosen node + routing cost."""

    kind: ClassVar[str] = "request.scheduled"
    request_id: int = 0
    service: str = ""
    origin_cluster: int = 0
    node: str = ""
    cluster_id: int = 0
    #: the min-cost-flow edge cost the decision paid (one-way delay, ms).
    cost_ms: float = 0.0
    #: LAN/WAN transfer latency the shipment will pay (delay + payload).
    ship_delay_ms: float = 0.0
    scheduler: str = ""
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestDelivered(Event):
    kind: ClassVar[str] = "request.delivered"
    request_id: int = 0
    node: str = ""
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestCompleted(Event):
    kind: ClassVar[str] = "request.completed"
    request_id: int = 0
    service: str = ""
    lc: bool = True
    node: str = ""
    latency_ms: float = 0.0
    qos_met: bool = True
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestAbandoned(Event):
    kind: ClassVar[str] = "request.abandoned"
    request_id: int = 0
    service: str = ""
    #: "node-queue" (patience expiry) or "crash" (node went down mid-run).
    where: str = "node-queue"
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestEvicted(Event):
    kind: ClassVar[str] = "request.evicted"
    request_id: int = 0
    service: str = ""
    node: str = ""
    cause: str = "preemption"
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestRequeued(Event):
    """A displaced (evicted/crash-surviving) request re-entered its master."""

    kind: ClassVar[str] = "request.requeued"
    request_id: int = 0
    origin_cluster: int = 0
    reschedules: int = 0
    request: Any = field(default=None, repr=False, compare=False)


@dataclass
class RequestDropped(Event):
    kind: ClassVar[str] = "request.dropped"
    request_id: int = 0
    service: str = ""
    reschedules: int = 0
    request: Any = field(default=None, repr=False, compare=False)


# ---------------------------------------------------------------------- #
# scheduler decisions
# ---------------------------------------------------------------------- #
@dataclass
class DispatchRound(Event):
    """One scheduler invocation: volume, placement count, and flow cost."""

    kind: ClassVar[str] = "scheduler.dispatch"
    scheduler: str = ""
    origin_cluster: int = 0
    offered: int = 0
    assigned: int = 0
    #: total min-cost-flow objective of the round's solves (ms of delay).
    flow_cost_ms: float = 0.0
    #: wall-clock decision latency of the round (ms).
    decision_ms: float = 0.0
    case2: bool = False


# ---------------------------------------------------------------------- #
# failures
# ---------------------------------------------------------------------- #
@dataclass
class NodeCrashed(Event):
    kind: ClassVar[str] = "failure.node_crashed"
    node: str = ""
    displaced: int = 0


@dataclass
class NodeRecovered(Event):
    kind: ClassVar[str] = "failure.node_recovered"
    node: str = ""


@dataclass
class PartitionStarted(Event):
    kind: ClassVar[str] = "failure.partition"
    cluster_id: int = -1
    duration_ms: float = 0.0


@dataclass
class PartitionHealed(Event):
    kind: ClassVar[str] = "failure.heal"
    cluster_id: int = -1


# ---------------------------------------------------------------------- #
# HRM (D-VPA, preemption, re-assurance)
# ---------------------------------------------------------------------- #
@dataclass
class DVPAResized(Event):
    kind: ClassVar[str] = "hrm.dvpa_resized"
    node: str = ""
    service: str = ""
    latency_ms: float = 0.0
    direction: str = "grow"  # grow | shrink


@dataclass
class BESqueezed(Event):
    kind: ClassVar[str] = "hrm.be_squeezed"
    node: str = ""
    freed_cpu: float = 0.0


@dataclass
class PreemptiveEviction(Event):
    kind: ClassVar[str] = "hrm.preemptive_eviction"
    node: str = ""
    service: str = ""
    victims: int = 0


@dataclass
class ReassuranceTransition(Event):
    """Algorithm 1 moved a (node, LC service) between quality levels."""

    kind: ClassVar[str] = "hrm.reassurance"
    node: str = ""
    service: str = ""
    previous: str = "stable"
    level: str = "stable"


# ---------------------------------------------------------------------- #
# runner housekeeping
# ---------------------------------------------------------------------- #
@dataclass
class PeriodSampled(Event):
    kind: ClassVar[str] = "runner.period"
    period_index: int = 0
    utilization: float = 0.0
    lc_utilization: float = 0.0
    be_utilization: float = 0.0


@dataclass
class StageProfile(Event):
    """End-of-run stage wall-clock totals from the tick-loop profiler."""

    kind: ClassVar[str] = "runner.stage_profile"
    stage_ms: Optional[Dict[str, float]] = None


@dataclass
class InvariantViolated(Event):
    """A runtime conservation/capacity law failed this tick.

    ``law`` names the check (``request-conservation``, ``node-resources``,
    ``dvpa-limits``, ``snapshot-coherence``, ``dispatch-capacity``);
    ``node``/``service`` are filled when the law localises to one.
    """

    kind: ClassVar[str] = "invariant.violation"
    law: str = ""
    message: str = ""
    node: str = ""
    service: str = ""
