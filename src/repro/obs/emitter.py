"""Lifecycle emitters — the null-object seam between sim layers and obs.

PR 2 taught every publisher (runner stages, DSS-LC, DCG-BE, HRM, the
failure injector, re-assurance) the same dance::

    if self.bus is None:
        sink(...)          # direct collector call, or nothing
    else:
        self.bus.publish(SomeEvent(...))

which scatters the observe on/off decision across five modules and builds
event dataclasses on hot paths only to decide afterwards whether anyone
listens.  An *emitter* collapses both branches into one always-valid
object with a typed method per event taking raw arguments:

* :class:`NullEmitter` — discard everything.  The default for standalone
  components (a scheduler or manager constructed outside a runner).
* :class:`DirectEmitter` — the observe-off runner path: the four request
  outcomes that feed :class:`~repro.metrics.collectors.PeriodCollector`
  are forwarded straight to it, everything else is discarded.  No event
  object is ever constructed, so the disabled path stays as cheap as the
  pre-emitter code.
* :class:`BusEmitter` — the observe-on path: construct the typed event
  and publish it on the bus; bridges replay the identical collector call
  sequence, keeping RunMetrics fingerprints bit-identical.

``emitter.enabled`` tells publishers whether anyone is listening, for the
rare cases that keep side state only to enrich events (e.g. re-assurance
level-transition tracking).
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import (
    BESqueezed,
    DispatchRound,
    DVPAResized,
    InvariantViolated,
    NodeCrashed,
    NodeRecovered,
    PartitionHealed,
    PartitionStarted,
    PreemptiveEviction,
    ReassuranceTransition,
    RequestAbandoned,
    RequestArrived,
    RequestCompleted,
    RequestDelivered,
    RequestDropped,
    RequestEvicted,
    RequestRequeued,
    RequestScheduled,
)

__all__ = [
    "NullEmitter",
    "DirectEmitter",
    "BusEmitter",
    "BufferingEmitter",
    "NULL_EMITTER",
]


class NullEmitter:
    """Discards every emission; safe default for standalone components."""

    #: True only when events reach an observer (the bus).
    enabled = False

    # -- request lifecycle --------------------------------------------- #
    def arrival(self, time_ms: float, request: Any) -> None:
        pass

    def scheduled(
        self,
        time_ms: float,
        request: Any,
        node: str,
        cluster_id: int,
        cost_ms: float,
        ship_delay_ms: float,
        scheduler: str,
    ) -> None:
        pass

    def delivered(self, time_ms: float, request: Any, node: str) -> None:
        pass

    def completed(self, time_ms: float, request: Any, node: str) -> None:
        pass

    def abandoned(self, time_ms: float, request: Any, where: str) -> None:
        pass

    def evicted(
        self, time_ms: float, request: Any, node: str, cause: str
    ) -> None:
        pass

    def requeued(self, time_ms: float, request: Any) -> None:
        pass

    def dropped(self, time_ms: float, request: Any) -> None:
        pass

    # -- scheduler ----------------------------------------------------- #
    def dispatch_round(
        self,
        time_ms: float,
        scheduler: str,
        origin_cluster: int,
        offered: int,
        assigned: int,
        flow_cost_ms: float,
        decision_ms: float = 0.0,
        case2: bool = False,
    ) -> None:
        pass

    # -- failures ------------------------------------------------------ #
    def node_crashed(self, time_ms: float, node: str, displaced: int) -> None:
        pass

    def node_recovered(self, time_ms: float, node: str) -> None:
        pass

    def partition_started(
        self, time_ms: float, cluster_id: int, duration_ms: float
    ) -> None:
        pass

    def partition_healed(self, time_ms: float, cluster_id: int) -> None:
        pass

    # -- HRM ----------------------------------------------------------- #
    def dvpa_resized(
        self,
        time_ms: float,
        node: str,
        service: str,
        latency_ms: float,
        direction: str,
    ) -> None:
        pass

    def be_squeezed(self, time_ms: float, node: str, freed_cpu: float) -> None:
        pass

    def preemptive_eviction(
        self, time_ms: float, node: str, service: str, victims: int
    ) -> None:
        pass

    def reassurance_transition(
        self, time_ms: float, node: str, service: str, previous: str, level: str
    ) -> None:
        pass

    # -- invariants ---------------------------------------------------- #
    def invariant_violation(
        self, time_ms: float, law: str, message: str, node: str, service: str
    ) -> None:
        pass


#: shared default — the class is stateless, one instance serves everyone.
NULL_EMITTER = NullEmitter()


class DirectEmitter(NullEmitter):
    """Observe-off runner path: request outcomes feed the collector directly.

    Matches the pre-emitter direct path exactly: only the four collector
    hooks fire, and evictions count only when caused by preemption (the
    collector bridge applies the same filter on the bus path).
    """

    enabled = False

    def __init__(self, collector) -> None:
        self.collector = collector

    def arrival(self, time_ms: float, request: Any) -> None:
        self.collector.on_arrival(request)

    def completed(self, time_ms: float, request: Any, node: str) -> None:
        self.collector.on_completion(request)

    def abandoned(self, time_ms: float, request: Any, where: str) -> None:
        self.collector.on_abandon(request)

    def evicted(
        self, time_ms: float, request: Any, node: str, cause: str
    ) -> None:
        if cause == "preemption":
            self.collector.on_eviction(request)


class BufferingEmitter:
    """Records emissions for deferred replay — the sharded merge barrier.

    Shard workers step nodes concurrently, but their managers must not
    write to the run's collector/bus mid-step or event order would depend
    on worker completion order.  A worker swaps a buffer in as the
    manager's emitter around each ``node.step``; the merge barrier replays
    the buffered calls on the real emitter in the canonical node order, so
    the observable event stream is identical to the serial interleaving.

    Any emitter method is accepted (recorded as ``(name, args, kwargs)``);
    ``enabled`` mirrors the target emitter so publishers that keep side
    state only when observed behave exactly as they would live.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.calls: list = []

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        calls = self.calls

        def record(*args: Any, **kwargs: Any) -> None:
            calls.append((name, args, kwargs))

        return record

    def replay(self, target) -> None:
        """Re-issue every buffered call against ``target``, then clear."""
        for name, args, kwargs in self.calls:
            getattr(target, name)(*args, **kwargs)
        self.calls.clear()


class BusEmitter(NullEmitter):
    """Observe-on path: build the typed event and publish it."""

    enabled = True

    def __init__(self, bus) -> None:
        self.bus = bus

    # -- request lifecycle --------------------------------------------- #
    def arrival(self, time_ms: float, request: Any) -> None:
        self.bus.publish(
            RequestArrived(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                lc=request.is_lc,
                origin_cluster=request.origin_cluster,
                request=request,
            )
        )

    def scheduled(
        self,
        time_ms: float,
        request: Any,
        node: str,
        cluster_id: int,
        cost_ms: float,
        ship_delay_ms: float,
        scheduler: str,
    ) -> None:
        self.bus.publish(
            RequestScheduled(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                origin_cluster=request.origin_cluster,
                node=node,
                cluster_id=cluster_id,
                cost_ms=cost_ms,
                ship_delay_ms=ship_delay_ms,
                scheduler=scheduler,
                request=request,
            )
        )

    def delivered(self, time_ms: float, request: Any, node: str) -> None:
        self.bus.publish(
            RequestDelivered(
                time_ms=time_ms,
                request_id=request.request_id,
                node=node,
                request=request,
            )
        )

    def completed(self, time_ms: float, request: Any, node: str) -> None:
        self.bus.publish(
            RequestCompleted(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                lc=request.is_lc,
                node=node,
                latency_ms=request.total_latency_ms() or 0.0,
                qos_met=bool(request.qos_met()),
                request=request,
            )
        )

    def abandoned(self, time_ms: float, request: Any, where: str) -> None:
        self.bus.publish(
            RequestAbandoned(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                where=where,
                request=request,
            )
        )

    def evicted(
        self, time_ms: float, request: Any, node: str, cause: str
    ) -> None:
        self.bus.publish(
            RequestEvicted(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                node=node,
                cause=cause,
                request=request,
            )
        )

    def requeued(self, time_ms: float, request: Any) -> None:
        self.bus.publish(
            RequestRequeued(
                time_ms=time_ms,
                request_id=request.request_id,
                origin_cluster=request.origin_cluster,
                reschedules=request.reschedules,
                request=request,
            )
        )

    def dropped(self, time_ms: float, request: Any) -> None:
        self.bus.publish(
            RequestDropped(
                time_ms=time_ms,
                request_id=request.request_id,
                service=request.spec.name,
                reschedules=request.reschedules,
                request=request,
            )
        )

    # -- scheduler ----------------------------------------------------- #
    def dispatch_round(
        self,
        time_ms: float,
        scheduler: str,
        origin_cluster: int,
        offered: int,
        assigned: int,
        flow_cost_ms: float,
        decision_ms: float = 0.0,
        case2: bool = False,
    ) -> None:
        self.bus.publish(
            DispatchRound(
                time_ms=time_ms,
                scheduler=scheduler,
                origin_cluster=origin_cluster,
                offered=offered,
                assigned=assigned,
                flow_cost_ms=flow_cost_ms,
                decision_ms=decision_ms,
                case2=case2,
            )
        )

    # -- failures ------------------------------------------------------ #
    def node_crashed(self, time_ms: float, node: str, displaced: int) -> None:
        self.bus.publish(
            NodeCrashed(time_ms=time_ms, node=node, displaced=displaced)
        )

    def node_recovered(self, time_ms: float, node: str) -> None:
        self.bus.publish(NodeRecovered(time_ms=time_ms, node=node))

    def partition_started(
        self, time_ms: float, cluster_id: int, duration_ms: float
    ) -> None:
        self.bus.publish(
            PartitionStarted(
                time_ms=time_ms, cluster_id=cluster_id, duration_ms=duration_ms
            )
        )

    def partition_healed(self, time_ms: float, cluster_id: int) -> None:
        self.bus.publish(PartitionHealed(time_ms=time_ms, cluster_id=cluster_id))

    # -- HRM ----------------------------------------------------------- #
    def dvpa_resized(
        self,
        time_ms: float,
        node: str,
        service: str,
        latency_ms: float,
        direction: str,
    ) -> None:
        self.bus.publish(
            DVPAResized(
                time_ms=time_ms,
                node=node,
                service=service,
                latency_ms=latency_ms,
                direction=direction,
            )
        )

    def be_squeezed(self, time_ms: float, node: str, freed_cpu: float) -> None:
        self.bus.publish(
            BESqueezed(time_ms=time_ms, node=node, freed_cpu=freed_cpu)
        )

    def preemptive_eviction(
        self, time_ms: float, node: str, service: str, victims: int
    ) -> None:
        self.bus.publish(
            PreemptiveEviction(
                time_ms=time_ms, node=node, service=service, victims=victims
            )
        )

    def reassurance_transition(
        self, time_ms: float, node: str, service: str, previous: str, level: str
    ) -> None:
        self.bus.publish(
            ReassuranceTransition(
                time_ms=time_ms,
                node=node,
                service=service,
                previous=previous,
                level=level,
            )
        )

    # -- invariants ---------------------------------------------------- #
    def invariant_violation(
        self, time_ms: float, law: str, message: str, node: str, service: str
    ) -> None:
        self.bus.publish(
            InvariantViolated(
                time_ms=time_ms,
                law=law,
                message=message,
                node=node,
                service=service,
            )
        )
