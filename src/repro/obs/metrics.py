"""Metric registry: counters, gauges, histograms; JSONL + Prometheus export.

A deliberately small, dependency-free re-implementation of the useful core
of ``prometheus_client``: named metrics with label sets, a registry, and
two exporters —

* :meth:`MetricRegistry.to_prometheus` renders the standard text
  exposition format (``# HELP`` / ``# TYPE`` headers, ``{label="v"}``
  sample lines, cumulative histogram buckets with ``+Inf``), so a run's
  final state can be scraped into any Prometheus-compatible tooling;
* :meth:`MetricRegistry.to_jsonl` emits one JSON object per sample for
  ad-hoc analysis (``jq``/pandas), which is how ``python -m repro trace
  --metrics-out`` persists a run.

Metric mutation is plain dict arithmetic — cheap enough for per-event
updates from the bus, and exactly reproducible run-over-run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry", "DEFAULT_BUCKETS"]

#: default latency buckets (ms) — tuned to the catalog's 180–1500 ms targets.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared naming/validation for all metric types."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        """Yield (suffix, labels, value) triples."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value, optionally per label set."""

    type_name = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        if labels:
            return self._values.get(_label_key(labels), 0.0)
        return sum(self._values.values())

    def samples(self):
        for key in sorted(self._values):
            yield "", key, self._values[key]


class Gauge(_Metric):
    """Point-in-time value, optionally per label set."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        for key in sorted(self._values):
            yield "", key, self._values[key]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
            self._sums[key] = 0.0
            self._totals[key] = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        self._sums[key] += value
        self._totals[key] += 1

    def count(self, **labels: Any) -> int:
        if labels:
            return self._totals.get(_label_key(labels), 0)
        return sum(self._totals.values())

    def sum(self, **labels: Any) -> float:
        if labels:
            return self._sums.get(_label_key(labels), 0.0)
        return sum(self._sums.values())

    def samples(self):
        for key in sorted(self._counts):
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts[key]):
                cumulative += n
                yield "_bucket", key + (("le", _fmt(bound)),), float(cumulative)
            yield "_bucket", key + (("le", "+Inf"),), float(self._totals[key])
            yield "_sum", key, self._sums[key]
            yield "_count", key, float(self._totals[key])


def _fmt(value: float) -> str:
    return f"{value:g}"


class MetricRegistry:
    """Named metric store with get-or-create accessors and exporters."""

    def __init__(self, prefix: str = "tango") -> None:
        self.prefix = prefix
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(f"{name} already registered as {existing.type_name}")
            return existing
        metric = Histogram(name, help, buckets)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(f"{name} already registered as {existing.type_name}")
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def _full_name(self, metric: _Metric) -> str:
        return f"{self.prefix}_{metric.name}" if self.prefix else metric.name

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            full = self._full_name(metric)
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            lines.append(f"# TYPE {full} {metric.type_name}")
            for suffix, key, value in metric.samples():
                lines.append(f"{full}{suffix}{_render_labels(key)} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def to_jsonl(self, fh: IO[str]) -> int:
        """One JSON object per sample; returns the line count."""
        written = 0
        for name in self.names():
            metric = self._metrics[name]
            full = self._full_name(metric)
            for suffix, key, value in metric.samples():
                fh.write(
                    json.dumps(
                        {
                            "metric": full + suffix,
                            "type": metric.type_name,
                            "labels": dict(key),
                            "value": value,
                        },
                        sort_keys=True,
                    )
                )
                fh.write("\n")
                written += 1
        return written

    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            return self.to_jsonl(fh)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested {metric: {rendered-labels: value}} view for tests/REPL."""
        out: Dict[str, Dict[str, float]] = {}
        for name in self.names():
            metric = self._metrics[name]
            series: Dict[str, float] = {}
            for suffix, key, value in metric.samples():
                series[f"{metric.name}{suffix}{_render_labels(key)}"] = value
            out[name] = series
        return out
