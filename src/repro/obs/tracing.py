"""Request-lifecycle tracing: span trees built from bus events.

The tracer subscribes to the request-lifecycle events and assembles, per
request, an ordered span chain::

    master_queue → schedule → ship → node_queue → execute → complete

Evicted BE requests get an ``evict_requeue`` marker and a fresh
``master_queue`` span per cycle, so a trace reads as the request's full
history across reschedules.  The ``node_queue``/``execute`` boundary is
recovered at completion time from the request's own ``started_ms`` stamp
(worker admission is not separately evented — the node runtime stays
uninstrumented), and the D-VPA allocation overhead is attached as a span
attribute.

Traces are bounded: once ``capacity`` traces exist, the oldest *finished*
traces are dropped first (open traces are never evicted, so an in-flight
request cannot lose its history mid-run).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional

from repro.obs.bus import EventBus
from repro.obs.events import (
    RequestAbandoned,
    RequestArrived,
    RequestCompleted,
    RequestDelivered,
    RequestDropped,
    RequestEvicted,
    RequestRequeued,
    RequestScheduled,
)

__all__ = ["Span", "RequestTrace", "RequestTracer"]

#: terminal trace statuses
_TERMINAL = ("completed", "abandoned", "dropped")


@dataclass
class Span:
    """One lifecycle stage; ``end_ms is None`` while the stage is open."""

    name: str
    start_ms: float
    end_ms: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "attrs": self.attrs,
        }


@dataclass
class RequestTrace:
    """The span chain of one request across its whole lifecycle."""

    request_id: int
    service: str
    lc: bool
    origin_cluster: int
    status: str = "open"
    spans: List[Span] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    def span_names(self) -> List[str]:
        return [s.name for s in self.spans]

    def open_span(self) -> Optional[Span]:
        if self.spans and self.spans[-1].end_ms is None:
            return self.spans[-1]
        return None

    def total_ms(self) -> Optional[float]:
        """Arrival → terminal duration, when the trace is finished."""
        if not self.finished or not self.spans:
            return None
        last_end = max(
            (s.end_ms for s in self.spans if s.end_ms is not None),
            default=None,
        )
        if last_end is None:
            return None
        return last_end - self.spans[0].start_ms

    def stage_durations(self) -> Dict[str, float]:
        """Summed duration per span name (markers contribute zero)."""
        out: Dict[str, float] = {}
        for span in self.spans:
            d = span.duration_ms
            if d is not None:
                out[span.name] = out.get(span.name, 0.0) + d
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "service": self.service,
            "kind": "lc" if self.lc else "be",
            "origin_cluster": self.origin_cluster,
            "status": self.status,
            "total_ms": self.total_ms(),
            "spans": [s.to_dict() for s in self.spans],
        }


class RequestTracer:
    """Builds :class:`RequestTrace` objects from bus events."""

    def __init__(self, bus: EventBus, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: insertion-ordered so eviction drops the oldest finished first.
        self._traces: "OrderedDict[int, RequestTrace]" = OrderedDict()
        self.dropped_traces = 0
        bus.subscribe_many(
            {
                RequestArrived: self._on_arrived,
                RequestScheduled: self._on_scheduled,
                RequestDelivered: self._on_delivered,
                RequestCompleted: self._on_completed,
                RequestAbandoned: self._on_abandoned,
                RequestEvicted: self._on_evicted,
                RequestRequeued: self._on_requeued,
                RequestDropped: self._on_dropped,
            }
        )

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _on_arrived(self, ev: RequestArrived) -> None:
        trace = RequestTrace(
            request_id=ev.request_id,
            service=ev.service,
            lc=ev.lc,
            origin_cluster=ev.origin_cluster,
        )
        trace.spans.append(Span("master_queue", ev.time_ms))
        self._traces[ev.request_id] = trace
        if len(self._traces) > self.capacity:
            self._evict_finished()

    def _on_scheduled(self, ev: RequestScheduled) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span(
                "schedule",
                ev.time_ms,
                ev.time_ms,
                attrs={
                    "node": ev.node,
                    "cluster": ev.cluster_id,
                    "cost_ms": ev.cost_ms,
                    "scheduler": ev.scheduler,
                },
            )
        )
        trace.spans.append(
            Span("ship", ev.time_ms, attrs={"delay_ms": ev.ship_delay_ms})
        )

    def _on_delivered(self, ev: RequestDelivered) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(Span("node_queue", ev.time_ms, attrs={"node": ev.node}))

    def _on_completed(self, ev: RequestCompleted) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        request = ev.request
        started = getattr(request, "started_ms", None)
        open_span = trace.open_span()
        if open_span is not None and open_span.name == "node_queue" and (
            started is not None
        ):
            open_span.end_ms = max(started, open_span.start_ms)
            overhead = getattr(request, "allocation_overhead_ms", 0.0)
            if overhead:
                open_span.attrs["allocation_overhead_ms"] = overhead
            trace.spans.append(
                Span("execute", open_span.end_ms, ev.time_ms,
                     attrs={"node": ev.node})
            )
        else:  # degenerate path (no delivery seen): close whatever is open
            self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span(
                "complete",
                ev.time_ms,
                ev.time_ms,
                attrs={"latency_ms": ev.latency_ms, "qos_met": ev.qos_met},
            )
        )
        trace.status = "completed"

    def _on_abandoned(self, ev: RequestAbandoned) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span("abandon", ev.time_ms, ev.time_ms, attrs={"where": ev.where})
        )
        trace.status = "abandoned"

    def _on_evicted(self, ev: RequestEvicted) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span(
                "evict_requeue",
                ev.time_ms,
                ev.time_ms,
                attrs={"node": ev.node, "cause": ev.cause},
            )
        )

    def _on_requeued(self, ev: RequestRequeued) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span(
                "master_queue",
                ev.time_ms,
                attrs={"reschedules": ev.reschedules},
            )
        )

    def _on_dropped(self, ev: RequestDropped) -> None:
        trace = self._traces.get(ev.request_id)
        if trace is None:
            return
        self._close_open(trace, ev.time_ms)
        trace.spans.append(
            Span(
                "drop",
                ev.time_ms,
                ev.time_ms,
                attrs={"reschedules": ev.reschedules},
            )
        )
        trace.status = "dropped"

    def _close_open(self, trace: RequestTrace, now_ms: float) -> None:
        span = trace.open_span()
        if span is not None:
            span.end_ms = max(now_ms, span.start_ms)

    def _evict_finished(self) -> None:
        for rid in list(self._traces):
            if len(self._traces) <= self.capacity:
                break
            if self._traces[rid].finished:
                del self._traces[rid]
                self.dropped_traces += 1

    # ------------------------------------------------------------------ #
    # queries + export
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._traces)

    def get(self, request_id: int) -> Optional[RequestTrace]:
        return self._traces.get(request_id)

    def traces(
        self,
        *,
        status: Optional[str] = None,
        service: Optional[str] = None,
    ) -> List[RequestTrace]:
        out: Iterable[RequestTrace] = self._traces.values()
        if status is not None:
            out = (t for t in out if t.status == status)
        if service is not None:
            out = (t for t in out if t.service == service)
        return list(out)

    def completed(self) -> List[RequestTrace]:
        return self.traces(status="completed")

    def to_jsonl(
        self,
        fh: IO[str],
        *,
        status: Optional[str] = None,
        service: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> int:
        """Write one JSON object per trace; returns the line count."""
        written = 0
        for trace in self.traces(status=status, service=service):
            if limit is not None and written >= limit:
                break
            fh.write(json.dumps(trace.to_dict(), sort_keys=True))
            fh.write("\n")
            written += 1
        return written

    def write_jsonl(self, path: str, **kwargs) -> int:
        with open(path, "w") as fh:
            return self.to_jsonl(fh, **kwargs)
