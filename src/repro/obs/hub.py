"""ObservabilityHub: one object wiring bus + tracer + registry together.

The runner owns exactly one hub per run (when ``RunnerConfig.observe`` or
``record_events`` is set).  The hub builds the :class:`EventBus`, then
attaches whichever consumers the run asked for:

* the :class:`RequestTracer` and :class:`MetricsSubscriber` when tracing /
  metrics are on,
* a :class:`CollectorBridge` for the run's :class:`PeriodCollector` (so
  the experiment metrics are driven through the bus),
* a :class:`KubeEventBridge` for the kubectl-style audit stream when the
  run records events.

It also carries the push-side helpers that need system state rather than
events: :meth:`sample_period` refreshes the per-period gauges
(utilization, queue depths, slack δ per LC service) and publishes a
:class:`PeriodSampled` event, and :meth:`record_stage_totals` folds the
stage profiler's wall-clock totals into gauges at end of run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.obs.bridges import CollectorBridge, KubeEventBridge, MetricsSubscriber
from repro.obs.bus import EventBus
from repro.obs.events import PeriodSampled, StageProfile
from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import RequestTracer
from repro.workloads.spec import ServiceKind

_LC = ServiceKind.LC
_BE = ServiceKind.BE

__all__ = ["ObservabilityHub"]


class ObservabilityHub:
    """Aggregates the three observability pillars behind one handle."""

    def __init__(
        self,
        *,
        ring_capacity: int = 4096,
        trace: bool = True,
        metrics: bool = True,
        trace_capacity: int = 100_000,
    ) -> None:
        self.bus = EventBus(capacity=ring_capacity)
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(self.bus, capacity=trace_capacity) if trace else None
        )
        self.registry: Optional[MetricRegistry] = None
        self._metrics_sub: Optional[MetricsSubscriber] = None
        if metrics:
            self.registry = MetricRegistry()
            self._metrics_sub = MetricsSubscriber(self.registry, self.bus)
        self.collector_bridge: Optional[CollectorBridge] = None
        self.recorder_bridge: Optional[KubeEventBridge] = None
        self.periods = 0

    # ------------------------------------------------------------------ #
    # sink attachment
    # ------------------------------------------------------------------ #
    def attach_collector(self, collector) -> CollectorBridge:
        """Route the run's :class:`PeriodCollector` through the bus."""
        self.collector_bridge = CollectorBridge(collector, self.bus)
        return self.collector_bridge

    def attach_recorder(self, recorder) -> KubeEventBridge:
        """Subscribe a kube :class:`EventRecorder` to the event stream."""
        self.recorder_bridge = KubeEventBridge(recorder, self.bus)
        return self.recorder_bridge

    # ------------------------------------------------------------------ #
    # state-driven sampling (gauges are reads, not event folds)
    # ------------------------------------------------------------------ #
    def sample_period(
        self,
        now_ms: float,
        system,
        collector,
        detector=None,
        specs: Optional[Iterable[Any]] = None,
    ) -> None:
        """Refresh per-period gauges and publish a :class:`PeriodSampled`.

        Called right after ``collector.maybe_sample`` closes a period, so
        the gauges line up 1:1 with the collector's period samples.
        """
        self.periods += 1
        util = system.system_utilization()
        lc_parts = []
        be_parts = []
        if self.registry is not None:
            depth_g = self.registry.gauge(
                "node_queue_depth", "queued + running requests per worker"
            )
            for node in system.all_workers():
                shares = node.utilization_by_kind()
                lc_parts.append(shares[_LC])
                be_parts.append(shares[_BE])
                lc_q, be_q = node.queue_lengths()
                depth_g.set(lc_q + be_q + len(node.running), node=node.name)
        else:
            for node in system.all_workers():
                shares = node.utilization_by_kind()
                lc_parts.append(shares[_LC])
                be_parts.append(shares[_BE])
        lc_util = sum(lc_parts) / len(lc_parts) if lc_parts else 0.0
        be_util = sum(be_parts) / len(be_parts) if be_parts else 0.0
        if self.registry is not None:
            util_g = self.registry.gauge(
                "utilization", "mean worker utilization, by kind"
            )
            util_g.set(util, kind="system")
            util_g.set(lc_util, kind="lc")
            util_g.set(be_util, kind="be")
            if detector is not None and specs:
                slack_g = self.registry.gauge(
                    "qos_slack", "re-assurance slack δ = 1 - p95/γ, per service"
                )
                for spec in specs:
                    if not spec.is_lc:
                        continue
                    for node in system.all_workers():
                        slack = detector.slack_score(
                            node.name, spec.name, spec, now_ms=now_ms
                        )
                        if slack is not None:
                            slack_g.set(
                                slack, service=spec.name, node=node.name
                            )
            self.registry.gauge(
                "periods_sampled", "metric periods closed so far"
            ).set(self.periods)
        self.bus.publish(
            PeriodSampled(
                time_ms=now_ms,
                period_index=self.periods - 1,
                utilization=util,
                lc_utilization=lc_util,
                be_utilization=be_util,
            )
        )

    def record_stage_totals(
        self, now_ms: float, stage_ms: Dict[str, float]
    ) -> None:
        """Publish end-of-run stage wall-clock totals from the profiler."""
        if self.registry is not None:
            gauge = self.registry.gauge(
                "stage_wall_ms", "tick-loop stage wall-clock totals, per stage"
            )
            for stage, ms in stage_ms.items():
                gauge.set(ms, stage=stage)
        self.bus.publish(StageProfile(time_ms=now_ms, stage_ms=dict(stage_ms)))
