"""State storage: the periodically refreshed view schedulers decide on.

Fig. 3 ➋: each master's state storage holds the status of nearby edge-clouds
and "periodically receives metrics, such as resource usage, round-trip time,
and the QoS, which are pushed by Prometheus and the QoS detector".  The
schedulers therefore act on *snapshots* that can be up to one refresh period
stale — an intentional fidelity point: it reproduces the small load-balancing
errors a real system exhibits between metric pushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.topology import EdgeCloudSystem
from repro.hrm.qos import QoSDetector
from repro.workloads.spec import ServiceSpec

__all__ = ["NodeSnapshot", "SystemSnapshot", "StateStorage"]


@dataclass(frozen=True)
class NodeSnapshot:
    """One worker's state as of the last refresh (X_i^k fields of §5.2.1)."""

    name: str
    cluster_id: int
    cpu_total: float
    cpu_available: float
    mem_total: float
    mem_available: float
    lc_queue: int
    be_queue: int
    running: int
    #: worst LC slack score on the node (δ_k of §4.3; DCG-BE state feature).
    min_slack: float
    #: reference CPU/memory demand waiting in the node's BE queue (the
    #: Q_{t,i} aggregate of DCG-BE's short-term reward).
    be_queue_cpu: float = 0.0
    be_queue_mem: float = 0.0


@dataclass
class SystemSnapshot:
    """All node snapshots plus inter-cluster delays at one refresh instant.

    Construction builds a name index and a per-cluster index so scheduler
    candidate loops stay O(candidates) instead of O(system): :meth:`node`
    is a dict lookup and :meth:`nodes_of` concatenates pre-grouped cluster
    lists.  ``nodes`` must not be mutated after construction.
    """

    time_ms: float
    nodes: List[NodeSnapshot]
    #: one-way delay between clusters in ms, indexed [a][b].
    delay_ms: List[List[float]]
    central_cluster_id: int

    def __post_init__(self) -> None:
        self._by_name: Dict[str, NodeSnapshot] = {n.name: n for n in self.nodes}
        by_cluster: Dict[int, List[NodeSnapshot]] = {}
        for n in self.nodes:
            by_cluster.setdefault(n.cluster_id, []).append(n)
        self._by_cluster = by_cluster
        # memoised nodes_of results; every master asks for the same cluster
        # neighbourhood each tick, and callers treat the result as read-only,
        # so the same list object can be served for the snapshot's lifetime.
        self._nodes_of_cache: Dict[tuple, List[NodeSnapshot]] = {}

    def nodes_of(self, cluster_ids: Optional[List[int]] = None) -> List[NodeSnapshot]:
        if cluster_ids is None:
            return list(self.nodes)
        # sorted unique ids reproduce the global node order (the nodes list
        # is grouped by ascending cluster), matching the seed's filter scan.
        key = tuple(sorted(set(cluster_ids)))
        cached = self._nodes_of_cache.get(key)
        if cached is None:
            cached = []
            for cid in key:
                members = self._by_cluster.get(cid)
                if members:
                    cached.extend(members)
            self._nodes_of_cache[key] = cached
        return cached

    def node(self, name: str) -> NodeSnapshot:
        found = self._by_name.get(name)
        if found is None:
            raise KeyError(name)
        return found


class StateStorage:
    """Periodic snapshotter over the live system."""

    def __init__(
        self,
        system: EdgeCloudSystem,
        detector: Optional[QoSDetector] = None,
        *,
        refresh_period_ms: float = 800.0,
        specs: Optional[Dict[str, ServiceSpec]] = None,
        node_filter: Optional[Callable[[str, int], bool]] = None,
    ) -> None:
        self.system = system
        self.detector = detector
        self.refresh_period_ms = refresh_period_ms
        self.specs = specs or {}
        #: predicate (node_name, cluster_id) → visible; used by failure
        #: injection to hide crashed nodes and partitioned clusters from
        #: the schedulers, as a real monitoring pipeline would.
        self.node_filter = node_filter
        self._snapshot: Optional[SystemSnapshot] = None
        self._last_refresh_ms: float = -1e18
        #: per-worker NodeSnapshot reuse: a worker whose runtime state did
        #: not change since its last snapshot (``snapshot_dirty`` unset)
        #: serves the cached frozen snapshot instead of being re-measured.
        self._node_cache: Dict[str, NodeSnapshot] = {}
        #: inter-cluster delays are pure geometry — computed once, not per
        #: refresh (invalidated only if the cluster count changes).
        self._delay_cache: Optional[List[List[float]]] = None

    def refresh(self, now_ms: float, *, force: bool = False) -> SystemSnapshot:
        if (
            not force
            and self._snapshot is not None
            and now_ms - self._last_refresh_ms < self.refresh_period_ms
        ):
            return self._snapshot
        self._last_refresh_ms = now_ms
        nodes = self._collect(list(self.system.all_workers()), now_ms)
        return self._assemble(now_ms, nodes)

    def refresh_partitioned(
        self, now_ms: float, worker_groups, executor, *, force: bool = False
    ) -> SystemSnapshot:
        """Sharded refresh: collect per-group snapshots via ``executor``
        (an object with ``run_tasks(fn, payloads)`` returning results in
        payload order), then assemble.

        ``worker_groups`` must concatenate, in order, to the
        ``all_workers()`` order, so the assembled node list is identical
        to a serial :meth:`refresh`.  Group collection is thread-safe:
        the per-worker cache is keyed by node name and the QoS detector's
        expire-on-read touches per-``(node, service)`` state only, so
        concurrent groups never write the same key.
        """
        if (
            not force
            and self._snapshot is not None
            and now_ms - self._last_refresh_ms < self.refresh_period_ms
        ):
            return self._snapshot
        self._last_refresh_ms = now_ms
        groups = executor.run_tasks(
            lambda workers: self._collect(workers, now_ms),
            [group for group in worker_groups if group],
        )
        nodes = [snap for group in groups for snap in group]
        return self._assemble(now_ms, nodes)

    def _collect(self, workers, now_ms: float) -> List[NodeSnapshot]:
        nodes: List[NodeSnapshot] = []
        cache = self._node_cache
        for worker in workers:
            if self.node_filter is not None and not self.node_filter(
                worker.name, worker.cluster_id
            ):
                continue
            snap = cache.get(worker.name)
            if snap is None or getattr(worker, "snapshot_dirty", True):
                snap = self._snapshot_worker(worker, now_ms)
                cache[worker.name] = snap
                worker.snapshot_dirty = False
            nodes.append(snap)
        return nodes

    def _assemble(
        self, now_ms: float, nodes: List[NodeSnapshot]
    ) -> SystemSnapshot:
        n = self.system.n_clusters
        if self._delay_cache is None or len(self._delay_cache) != n:
            self._delay_cache = [
                [self.system.one_way_delay_ms(a, b) for b in range(n)]
                for a in range(n)
            ]
        self._snapshot = SystemSnapshot(
            time_ms=now_ms,
            nodes=nodes,
            delay_ms=self._delay_cache,
            central_cluster_id=self.system.central_cluster_id,
        )
        return self._snapshot

    def _snapshot_worker(self, worker, now_ms: float) -> NodeSnapshot:
        free = worker.free()
        lc_q, be_q = worker.queue_lengths()
        q_cpu, q_mem = worker.queued_be_demand()
        if self.detector is not None and self.specs:
            slack = self.detector.node_min_slack(
                worker.name, self.specs, now_ms=now_ms
            )
        else:
            slack = 1.0
        return NodeSnapshot(
            name=worker.name,
            cluster_id=worker.cluster_id,
            cpu_total=worker.capacity.cpu,
            cpu_available=free.cpu,
            mem_total=worker.capacity.memory,
            mem_available=free.memory,
            lc_queue=lc_q,
            be_queue=be_q,
            running=len(worker.running),
            min_slack=slack,
            be_queue_cpu=q_cpu,
            be_queue_mem=q_mem,
        )

    @property
    def current(self) -> Optional[SystemSnapshot]:
        return self._snapshot

    def cached_node_snapshot(self, name: str) -> Optional[NodeSnapshot]:
        """Last per-worker view built by :meth:`refresh` (None before the
        first refresh touches the node).  Used by the invariant checker to
        compare the cached view against ground truth."""
        return self._node_cache.get(name)

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """Refresh phase is behaviorally observable (snapshot staleness is
        an intentional fidelity point), so the current snapshot, its
        timestamp, and the per-worker cache are all part of the state —
        restore must *not* force a refresh."""
        return {
            "snapshot": self._snapshot,
            "last_refresh_ms": self._last_refresh_ms,
            "node_cache": self._node_cache,
        }

    def restore_state(self, state: Dict) -> None:
        self._snapshot = state["snapshot"]
        self._last_refresh_ms = state["last_refresh_ms"]
        self._node_cache = state["node_cache"]
