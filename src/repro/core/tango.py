"""TangoSystem: assemble the full framework (or any baseline) and run it.

This is the library's main entry point::

    from repro import TangoSystem, TangoConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    config = TangoConfig.tango()
    trace = SyntheticTrace(TraceConfig(n_clusters=config.topology.n_clusters))
    system = TangoSystem(config)
    metrics = system.run(trace.generate())
    print(metrics.summary())

The builder wires together the topology, the per-node resource managers
(HRM / static / CERES), the QoS detector + re-assurance mechanism, the
state storage, and the chosen LC/BE traffic schedulers, matching the
component diagram of Fig. 3.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.ceres import CeresManager
from repro.baselines.dsaco import DSACOConfig, DSACOScheduler
from repro.baselines.static import StaticPartitionManager
from repro.cluster.topology import EdgeCloudSystem
from repro.core.config import TangoConfig
from repro.core.state_storage import StateStorage
from repro.hrm.qos import QoSDetector
from repro.hrm.reassurance import ReassuranceMechanism
from repro.hrm.regulations import HRMManager
from repro.metrics.collectors import RunMetrics
from repro.scheduling.baselines import (
    K8sNativeScheduler,
    LoadGreedyScheduler,
    ScoringScheduler,
)
from repro.scheduling.dcg_be import DCGBEScheduler
from repro.scheduling.dss_lc import DSSLCScheduler
from repro.scheduling.gnn_sac import GNNSACScheduler
from repro.sim.runner import SimulationRunner
from repro.workloads.spec import ServiceSpec, default_catalog
from repro.workloads.trace import TraceRecord

__all__ = ["TangoSystem"]


class _BEAdapter:
    """Expose a dual-role scheduler through the BE protocol only."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def dispatch_be(self, requests, snapshot, now_ms):
        return self._inner.dispatch_be(requests, snapshot, now_ms)

    # -- Checkpointable (delegate to the wrapped scheduler) ------------ #
    def snapshot_state(self):
        from repro.sim.checkpoint import component_state

        return {"inner": component_state(self._inner)}

    def restore_state(self, state) -> None:
        from repro.sim.checkpoint import restore_component

        restore_component(self._inner, state["inner"])


class TangoSystem:
    """One experimental deployment: topology + policies + managers."""

    def __init__(
        self,
        config: Optional[TangoConfig] = None,
        *,
        catalog: Optional[Sequence[ServiceSpec]] = None,
        lc_scheduler=None,
        be_scheduler=None,
    ) -> None:
        """Build a system; pass ``lc_scheduler``/``be_scheduler`` to inject
        pre-built (e.g. pre-trained) policy objects instead of fresh ones —
        used by the learning-curve experiments to warm up DCG-BE/GNN-SAC
        across runs, mirroring the paper's long online-training horizon."""
        self.config = config or TangoConfig()
        self.catalog = list(catalog or default_catalog())
        self.system = EdgeCloudSystem(self.config.topology)

        # HRM plumbing (detector is useful to everyone via state storage)
        self.detector = QoSDetector()
        self.reassurance: Optional[ReassuranceMechanism] = None
        if self.config.manager == "hrm" and self.config.reassurance_enabled:
            self.reassurance = ReassuranceMechanism(
                self.detector, self.config.reassurance
            )

        self.manager = self._build_manager()
        for worker in self.system.all_workers():
            worker.manager = self.manager

        specs = {s.name: s for s in self.catalog}
        self.storage = StateStorage(
            self.system,
            self.detector,
            refresh_period_ms=self.config.runner.state_refresh_ms,
            specs=specs,
        )
        self.lc_scheduler = lc_scheduler or self._build_lc_scheduler()
        self.be_scheduler = be_scheduler or self._build_be_scheduler()

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def _build_manager(self):
        if self.config.manager == "hrm":
            reassurance = self.reassurance or ReassuranceMechanism(
                self.detector, self.config.reassurance
            )
            if self.reassurance is None:
                # re-assurance disabled: freeze minima by never running it;
                # the mechanism object still serves the catalog defaults.
                self._frozen_reassurance = reassurance
            return HRMManager(self.detector, reassurance, self.config.hrm)
        if self.config.manager == "static":
            return StaticPartitionManager()
        if self.config.manager == "ceres":
            return CeresManager()
        raise ValueError(self.config.manager)

    def _build_lc_scheduler(self):
        policy = self.config.lc_policy
        if policy == "dss-lc":
            return DSSLCScheduler(
                self.config.dss_lc, reassurance=self.reassurance
            )
        if policy == "load-greedy":
            return LoadGreedyScheduler()
        if policy == "k8s-native":
            return K8sNativeScheduler()
        if policy == "scoring":
            return ScoringScheduler()
        if policy == "dsaco":
            return self._shared_dsaco()
        raise ValueError(policy)

    def _build_be_scheduler(self):
        policy = self.config.be_policy
        if policy == "dcg-be":
            return DCGBEScheduler(self.config.dcg_be)
        if policy == "gnn-sac":
            return GNNSACScheduler(self.config.dcg_be)
        if policy == "load-greedy":
            return _BEAdapter(LoadGreedyScheduler())
        if policy == "k8s-native":
            return _BEAdapter(K8sNativeScheduler())
        if policy == "dsaco":
            scheduler = self._shared_dsaco()
            scheduler.distributed = True  # runner dispatches per cluster
            return scheduler
        raise ValueError(policy)

    def _shared_dsaco(self) -> DSACOScheduler:
        if not hasattr(self, "_dsaco"):
            self._dsaco = DSACOScheduler(DSACOConfig(seed=self.config.seed))
        return self._dsaco

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _build_runner(self, trace: Sequence[TraceRecord]) -> SimulationRunner:
        runner = SimulationRunner(
            self.system,
            trace,
            self.catalog,
            self.lc_scheduler,
            self.be_scheduler,
            config=self.config.runner,
            state_storage=self.storage,
            reassurance=self.reassurance,
        )
        self.last_runner = runner
        return runner

    def run(
        self, trace: Sequence[TraceRecord], until_ms: Optional[float] = None
    ) -> RunMetrics:
        """Run the simulation (optionally only up to ``until_ms``).

        The runner stays reachable as ``self.last_runner``; after a partial
        run, call ``last_runner.checkpoint()`` to freeze the state and
        ``last_runner.run()`` to continue to the configured duration.
        """
        return self._build_runner(trace).run(until_ms=until_ms)

    def resume(self, trace: Sequence[TraceRecord], checkpoint) -> RunMetrics:
        """Resume a checkpointed run to completion on a freshly built
        system.  The system, config, and trace must match the ones the
        checkpoint was taken from; the resumed run's RunMetrics are
        bit-identical to a straight run of the same configuration."""
        runner = self._build_runner(trace)
        runner.restore(checkpoint)
        return runner.run()
