"""Top-level configuration for building a Tango (or baseline) system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.topology import TopologyConfig
from repro.hrm.reassurance import ReassuranceConfig
from repro.hrm.regulations import HRMConfig
from repro.scheduling.dcg_be import DCGBEConfig
from repro.scheduling.dss_lc import DSSLCConfig
from repro.sim.runner import RunnerConfig

__all__ = ["TangoConfig", "LC_POLICIES", "BE_POLICIES", "MANAGERS"]

LC_POLICIES = ("dss-lc", "load-greedy", "k8s-native", "scoring", "dsaco")
BE_POLICIES = ("dcg-be", "gnn-sac", "load-greedy", "k8s-native", "dsaco")
MANAGERS = ("hrm", "static", "ceres")


@dataclass
class TangoConfig:
    """Everything needed to assemble one experimental system.

    Tango itself is ``manager="hrm", lc_policy="dss-lc", be_policy="dcg-be"``
    with re-assurance on; baselines swap individual pieces, which is exactly
    how the paper's pairing matrix (Fig. 12) and ablations are produced.
    """

    manager: str = "hrm"
    lc_policy: str = "dss-lc"
    be_policy: str = "dcg-be"
    #: QoS re-assurance on/off (Fig. 10 ablation).
    reassurance_enabled: bool = True
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    hrm: HRMConfig = field(default_factory=HRMConfig)
    reassurance: ReassuranceConfig = field(default_factory=ReassuranceConfig)
    dss_lc: DSSLCConfig = field(default_factory=DSSLCConfig)
    dcg_be: DCGBEConfig = field(default_factory=DCGBEConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.manager not in MANAGERS:
            raise ValueError(f"unknown manager {self.manager!r}; want {MANAGERS}")
        if self.lc_policy not in LC_POLICIES:
            raise ValueError(
                f"unknown LC policy {self.lc_policy!r}; want {LC_POLICIES}"
            )
        if self.be_policy not in BE_POLICIES:
            raise ValueError(
                f"unknown BE policy {self.be_policy!r}; want {BE_POLICIES}"
            )

    @classmethod
    def tango(cls, **overrides) -> "TangoConfig":
        """The full Tango stack (HRM + DSS-LC + DCG-BE)."""
        return cls(**overrides)

    @classmethod
    def k8s_native(cls, **overrides) -> "TangoConfig":
        """Plain Kubernetes: static allocation + round-robin everywhere."""
        overrides.setdefault("manager", "static")
        overrides.setdefault("lc_policy", "k8s-native")
        overrides.setdefault("be_policy", "k8s-native")
        overrides.setdefault("reassurance_enabled", False)
        return cls(**overrides)

    @classmethod
    def ceres(cls, **overrides) -> "TangoConfig":
        """CERES: local elastic management, static traffic policy (§7.3)."""
        overrides.setdefault("manager", "ceres")
        overrides.setdefault("lc_policy", "k8s-native")
        overrides.setdefault("be_policy", "k8s-native")
        overrides.setdefault("reassurance_enabled", False)
        return cls(**overrides)

    @classmethod
    def dsaco(cls, **overrides) -> "TangoConfig":
        """DSACO: distributed SAC offloading, no mixed-workload manager."""
        overrides.setdefault("manager", "static")
        overrides.setdefault("lc_policy", "dsaco")
        overrides.setdefault("be_policy", "dsaco")
        overrides.setdefault("reassurance_enabled", False)
        return cls(**overrides)
