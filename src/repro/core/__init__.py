"""Tango core: configuration, system assembly, and state storage."""

from .config import TangoConfig
from .state_storage import NodeSnapshot, StateStorage, SystemSnapshot
from .tango import TangoSystem

__all__ = [
    "TangoConfig",
    "TangoSystem",
    "StateStorage",
    "SystemSnapshot",
    "NodeSnapshot",
]
